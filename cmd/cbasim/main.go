// Command cbasim runs a single simulation configuration and prints its
// statistics: execution time, bus shares and traffic mix. It is the
// low-level companion to cmd/experiments.
//
// Usage:
//
//	cbasim -workload matrix -policy RP -credit cba -scenario con -runs 10
//
// Simulations use the event-horizon stepping engine (DESIGN.md §6),
// bit-identical to per-cycle simulation and ≥5× faster; pass -fast=false
// to force the per-cycle reference engine.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"creditbus"
	"creditbus/internal/campaign"
	"creditbus/internal/cpu"
	"creditbus/internal/mem"
	"creditbus/internal/report"
	"creditbus/internal/sim"
	"creditbus/internal/stats"
)

var policies = map[string]sim.PolicyKind{
	"RR":   creditbus.PolicyRoundRobin,
	"FIFO": creditbus.PolicyFIFO,
	"TDMA": creditbus.PolicyTDMA,
	"LOT":  creditbus.PolicyLottery,
	"RP":   creditbus.PolicyRandomPerm,
	"PRI":  creditbus.PolicyPriority,
}

var credits = map[string]sim.CreditKind{
	"off":          creditbus.CreditOff,
	"cba":          creditbus.CreditCBA,
	"hcba-weights": creditbus.CreditHCBAWeights,
	"hcba-cap":     creditbus.CreditHCBACap,
}

func main() {
	var (
		workloadName = flag.String("workload", "matrix", "benchmark to run (see -list)")
		list         = flag.Bool("list", false, "list available workloads and exit")
		policy       = flag.String("policy", "RP", "arbitration policy: RR, FIFO, TDMA, LOT, RP, PRI")
		credit       = flag.String("credit", "off", "CBA variant: off, cba, hcba-weights, hcba-cap")
		scenario     = flag.String("scenario", "iso", "iso (isolation) or con (maximum contention)")
		runs         = flag.Int("runs", 10, "randomised runs")
		seed         = flag.Uint64("seed", 20170327, "base seed")
		cores        = flag.Int("cores", 4, "number of cores")
		parallel     = flag.Int("parallel", runtime.GOMAXPROCS(0), "runs in flight (1 = serial; results are identical at any setting)")
		fast         = flag.Bool("fast", true, "event-horizon stepping (bit-identical to per-cycle; -fast=false forces the per-cycle reference engine)")
	)
	flag.Parse()

	if *list {
		tbl := report.NewTable("Available workloads", "name", "description")
		for _, n := range creditbus.Workloads() {
			d, _ := creditbus.WorkloadDescription(n)
			tbl.AddRow(n, d)
		}
		if err := tbl.Fprint(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	cfg := creditbus.DefaultConfig()
	cfg.Cores = *cores
	cfg.ForcePerCycle = !*fast
	pk, ok := policies[*policy]
	if !ok {
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}
	cfg.Policy = pk
	ck, ok := credits[*credit]
	if !ok {
		fatal(fmt.Errorf("unknown credit variant %q", *credit))
	}
	cfg.Credit.Kind = ck

	prog, err := creditbus.BuildWorkload(*workloadName, 1)
	if err != nil {
		fatal(err)
	}

	var run campaign.Scenario
	switch *scenario {
	case "iso":
		run = sim.RunIsolation
	case "con":
		run = sim.RunMaxContention
	default:
		fatal(fmt.Errorf("unknown scenario %q", *scenario))
	}
	spec := campaign.Spec{
		Config:   cfg,
		Runs:     *runs,
		BaseSeed: *seed,
		Workers:  *parallel,
	}
	if _, ok := cpu.TryClone(prog); ok {
		spec.Build = func(int) cpu.Program {
			p, _ := cpu.TryClone(prog)
			return p
		}
	} else {
		// Non-cloneable program: fall back to the serial Reset-per-run
		// loop, which yields the same samples.
		spec.Workers = 1
		spec.Build = func(int) cpu.Program {
			prog.Reset()
			return prog
		}
	}
	results, err := spec.Results(run)
	if err != nil {
		fatal(err)
	}

	var acc stats.Accumulator
	for _, res := range results {
		acc.Add(float64(res.TaskCycles))
	}
	last := results[len(results)-1]

	fmt.Printf("workload=%s policy=%s credit=%s scenario=%s runs=%d\n",
		*workloadName, *policy, *credit, *scenario, *runs)
	fmt.Printf("execution time: mean=%.0f ±%.0f (95%% CI)  min=%.0f max=%.0f cycles\n",
		acc.Mean(), acc.CI95HalfWidth(), acc.Min(), acc.Max())
	fmt.Printf("last run: util=%.3f l1=%.3f l2=%.3f bus-requests=%d max-wait=%d\n",
		last.Utilisation, last.L1HitRate, last.L2HitRate, last.Bus.Requests, last.Bus.MaxWait)
	tbl := report.NewTable("Bus traffic by kind (last run)", "kind", "count")
	for _, k := range memKinds(last) {
		tbl.AddRowf(k.String(), last.MemCounts[k])
	}
	if err := tbl.Fprint(os.Stdout); err != nil {
		fatal(err)
	}
}

// memKinds returns the kinds present in the result, in enum order.
func memKinds(r creditbus.Result) []mem.Kind {
	out := make([]mem.Kind, 0, len(r.MemCounts))
	for k := range r.MemCounts {
		out = append(out, k)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cbasim:", err)
	os.Exit(1)
}
