// Command cbasim runs a single simulation configuration and prints its
// statistics: execution time, bus shares and traffic mix. It is the
// low-level companion to cmd/experiments.
//
// The configuration is a declarative scenario (internal/scenario, DESIGN.md
// §7): either loaded from a JSON file, or assembled in memory from the
// classic flags — which are just spellings of the same spec.
//
// Usage:
//
//	cbasim -workload matrix -policy RP -credit cba -scenario con -runs 10
//	cbasim -scenario internal/scenario/testdata/corpus/hcba-weights-half.json
//
// Simulations use the event-horizon stepping engine (DESIGN.md §6),
// bit-identical to per-cycle simulation and ≥5× faster; pass -fast=false
// to force the per-cycle reference engine.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"creditbus"
	"creditbus/internal/mem"
	"creditbus/internal/report"
	"creditbus/internal/scenario"
	"creditbus/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cbasim:", err)
		os.Exit(1)
	}
}

// scenarioFlags are the flags that describe the in-memory scenario; they
// conflict with loading one from a file.
var scenarioFlags = map[string]bool{
	"workload": true, "policy": true, "credit": true,
	"runs": true, "seed": true, "cores": true,
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cbasim", flag.ContinueOnError)
	var (
		workloadName = fs.String("workload", "matrix", "benchmark to run (see -list)")
		list         = fs.Bool("list", false, "list available workloads and exit")
		policy       = fs.String("policy", "RP", "arbitration policy: RR, FIFO, TDMA, LOT, RP, PRI")
		credit       = fs.String("credit", "off", "CBA variant: off, cba, hcba-weights, hcba-cap")
		scen         = fs.String("scenario", "iso", "iso (isolation), con (maximum contention), or a path to a scenario JSON (DESIGN.md §7)")
		runs         = fs.Int("runs", 10, "randomised runs")
		seed         = fs.Uint64("seed", 20170327, "base seed")
		cores        = fs.Int("cores", 4, "number of cores")
		parallel     = fs.Int("parallel", runtime.GOMAXPROCS(0), "runs in flight (1 = serial; results are identical at any setting)")
		fast         = fs.Bool("fast", true, "event-horizon stepping (bit-identical to per-cycle; -fast=false forces the per-cycle reference engine)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	if *list {
		tbl := report.NewTable("Available workloads", "name", "description")
		for _, n := range creditbus.Workloads() {
			d, _ := creditbus.WorkloadDescription(n)
			tbl.AddRow(n, d)
		}
		return tbl.Fprint(stdout)
	}

	var spec scenario.Spec
	fromFile := strings.HasSuffix(*scen, ".json")
	conflicts, fastExplicit := scenario.ScanFlags(fs, scenarioFlags)
	if fromFile {
		// The file is the whole configuration; flags that would silently
		// lose to it are conflicts, not overrides.
		if len(conflicts) > 0 {
			return fmt.Errorf("-scenario %s conflicts with %s: the file defines the scenario", *scen, strings.Join(conflicts, ", "))
		}
		var err error
		spec, err = scenario.Load(*scen)
		if err != nil {
			return err
		}
	} else {
		runKind, ok := map[string]string{
			"iso": scenario.RunIsolation,
			"con": scenario.RunWCET,
		}[*scen]
		if !ok {
			return fmt.Errorf("unknown scenario %q (iso, con, or a *.json spec)", *scen)
		}
		if *runs <= 0 {
			// Seeds.Expand would quietly clamp this to one run; keep the
			// historical contract that -runs 0 is an error.
			return fmt.Errorf("-runs %d, need > 0", *runs)
		}
		if *cores <= 0 {
			// Spec.cores would quietly fall back to the default platform.
			return fmt.Errorf("-cores %d, need > 0", *cores)
		}
		spec = scenario.Spec{
			Name:   "cli",
			Cores:  *cores,
			Policy: *policy,
			Credit: &scenario.Credit{Kind: *credit},
			Run:    runKind,
			Workloads: []scenario.Workload{
				{Core: 0, Name: *workloadName},
			},
			Seeds: scenario.Seeds{Base: *seed, Runs: *runs},
		}
	}
	// -fast is an engine override, honoured for file scenarios only when
	// explicitly set on the command line.
	if fastExplicit || !fromFile {
		spec.Engine = scenario.EngineForFast(*fast)
	}

	compiled, err := spec.Compile()
	if err != nil {
		return err
	}
	results, err := compiled.Results(*parallel, nil)
	if err != nil {
		return err
	}

	var acc stats.Accumulator
	for _, res := range results {
		acc.Add(float64(res.TaskCycles))
	}
	last := results[len(results)-1]

	creditName := "off"
	if spec.Credit != nil {
		creditName = spec.Credit.Kind
	}
	policyName := spec.Policy
	if policyName == "" {
		policyName = "RP"
	}
	fmt.Fprintf(stdout, "scenario=%s run=%s policy=%s credit=%s tua-workload=%s runs=%d\n",
		spec.Name, spec.Run, policyName, creditName, tuaWorkload(spec, compiled.TuA()), len(results))
	fmt.Fprintf(stdout, "execution time: mean=%.0f ±%.0f (95%% CI)  min=%.0f max=%.0f cycles\n",
		acc.Mean(), acc.CI95HalfWidth(), acc.Min(), acc.Max())
	fmt.Fprintf(stdout, "last run: util=%.3f l1=%.3f l2=%.3f bus-requests=%d max-wait=%d\n",
		last.Utilisation, last.L1HitRate, last.L2HitRate, last.Bus.Requests, last.Bus.MaxWait)
	tbl := report.NewTable("Bus traffic by kind (last run)", "kind", "count")
	for _, k := range memKinds(last) {
		tbl.AddRowf(k.String(), last.MemCounts[k])
	}
	return tbl.Fprint(stdout)
}

// tuaWorkload names the program on the task-under-analysis core.
func tuaWorkload(spec scenario.Spec, tua int) string {
	for _, w := range spec.Workloads {
		if w.Core == tua {
			return w.Name
		}
	}
	return "?"
}

// memKinds returns the kinds present in the result, in enum order.
func memKinds(r creditbus.Result) []mem.Kind {
	out := make([]mem.Kind, 0, len(r.MemCounts))
	for k := range r.MemCounts {
		out = append(out, k)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}
