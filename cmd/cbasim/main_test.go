package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// smokeSpec is a tiny scenario that runs in milliseconds.
const smokeSpec = `{
  "name": "smoke",
  "credit": {"kind": "cba"},
  "run": "wcet",
  "workloads": [
    {"core": 0, "workload": "canrdr", "ops": 300}
  ],
  "seeds": {"list": [3, 4]}
}`

func writeSpec(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"matrix", "cacheb", "stream", "burst"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestRunFlagScenario(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-workload", "canrdr", "-credit", "cba", "-scenario", "con",
		"-runs", "2", "-cores", "2", "-parallel", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"run=wcet", "credit=cba", "tua-workload=canrdr", "runs=2",
		"execution time:", "Bus traffic by kind",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunScenarioFileRoundTrip(t *testing.T) {
	path := writeSpec(t, smokeSpec)
	var out strings.Builder
	if err := run([]string{"-scenario", path, "-parallel", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "scenario=smoke") || !strings.Contains(got, "runs=2") {
		t.Errorf("file scenario not honoured:\n%s", got)
	}

	// The per-cycle engine must produce identical output (bit-identical
	// engines — the corpus proves it, the CLI must preserve it).
	var slow strings.Builder
	if err := run([]string{"-scenario", path, "-parallel", "1", "-fast=false"}, &slow); err != nil {
		t.Fatal(err)
	}
	if got != slow.String() {
		t.Errorf("-fast=false changed the output:\nfast:\n%s\nper-cycle:\n%s", got, slow.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown scenario", []string{"-scenario", "warp"}, "unknown scenario"},
		{"unknown policy", []string{"-policy", "EDF"}, "unknown policy"},
		{"unknown credit", []string{"-credit", "tokens"}, "unknown credit"},
		{"unknown workload", []string{"-workload", "dhrystone"}, "unknown workload"},
		{"positional args", []string{"extra"}, "unexpected arguments"},
		{"missing file", []string{"-scenario", "no/such/file.json"}, "no/such/file.json"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out strings.Builder
			err := run(c.args, &out)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error", c.args)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestRunScenarioFileFlagConflict(t *testing.T) {
	path := writeSpec(t, smokeSpec)
	var out strings.Builder
	err := run([]string{"-scenario", path, "-workload", "matrix"}, &out)
	if err == nil || !strings.Contains(err.Error(), "conflicts with -workload") {
		t.Fatalf("conflicting flag accepted: %v", err)
	}
	// Engine and parallelism flags are overrides, not conflicts.
	if err := run([]string{"-scenario", path, "-parallel", "2", "-fast"}, &out); err != nil {
		t.Fatalf("override flags rejected: %v", err)
	}
}
