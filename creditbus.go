// Package creditbus is a cycle-accurate reproduction of "Design and
// Implementation of a Fair Credit-Based Bandwidth Sharing Scheme for Buses"
// (Slijepcevic, Hernandez, Abella, Cazorla — DATE 2017).
//
// It provides:
//
//   - Credit-Based Arbitration (CBA): a filter in front of any slot-fair bus
//     arbitration policy that makes bandwidth sharing fair in cycles of bus
//     occupancy instead of granted slots, including both heterogeneous
//     variants of §III.A;
//   - the paper's full evaluation platform as a simulator: in-order cores,
//     randomised (MBPTA-friendly) L1/L2 caches, a non-split shared bus with
//     round-robin/FIFO/TDMA/lottery/random-permutations arbitration, and a
//     fixed-latency memory controller;
//   - EEMBC-Autobench-like workloads, the paper's WCET-estimation mode
//     (Table I) and an MBPTA/EVT pipeline for pWCET estimation;
//   - a deterministic parallel campaign engine: multi-run measurement
//     protocols (CollectMaxContention, the experiments in cmd/experiments)
//     fan independent runs out across CPUs and return sample vectors
//     bit-identical to their serial equivalents;
//   - an event-horizon stepping engine (the default): components report the
//     next cycle at which their visible state can change and the machine
//     advances the uneventful cycles in between in closed form — proven
//     bit-identical to per-cycle simulation by a differential suite and ≥5×
//     faster per run (Config.ForcePerCycle selects the reference engine).
//
// The quickest start:
//
//	cfg := creditbus.DefaultConfig()
//	cfg.Credit.Kind = creditbus.CreditCBA
//	prog, _ := creditbus.BuildWorkload("matrix", 1)
//	res, _ := creditbus.RunMaxContention(cfg, prog, 42)
//	fmt.Println(res.TaskCycles)
//
// See the examples directory for complete programs and DESIGN.md /
// EXPERIMENTS.md for the reproduction methodology and measured results.
package creditbus

import (
	"fmt"

	"creditbus/internal/arbiter"
	"creditbus/internal/campaign"
	"creditbus/internal/core"
	"creditbus/internal/cpu"
	"creditbus/internal/mbpta"
	"creditbus/internal/sim"
	"creditbus/internal/workload"
)

// Config describes the simulated platform: core count, cache geometry,
// transaction latencies, arbitration policy, CBA variant and analysis mode.
type Config = sim.Config

// CreditSpec selects and parameterises the CBA variant.
type CreditSpec = sim.CreditSpec

// Result carries the observables of one run.
type Result = sim.Result

// Program is a workload running on a simulated core.
type Program = cpu.Program

// Op is one program operation (ALU work, load, store or atomic).
type Op = cpu.Op

// The operation kinds of Program traces.
const (
	OpALU    = cpu.OpALU
	OpLoad   = cpu.OpLoad
	OpStore  = cpu.OpStore
	OpAtomic = cpu.OpAtomic
)

// NewTrace builds a replayable Program from explicit operations, for
// user-defined workloads.
func NewTrace(ops []Op) Program { return cpu.NewTrace(ops) }

// Arbitration policies for Config.Policy.
const (
	PolicyRoundRobin = sim.PolicyRoundRobin
	PolicyFIFO       = sim.PolicyFIFO
	PolicyTDMA       = sim.PolicyTDMA
	PolicyLottery    = sim.PolicyLottery
	PolicyRandomPerm = sim.PolicyRandomPerm
	PolicyPriority   = sim.PolicyPriority
	// The fairness-policy zoo: proportional fair (EWMA rate averaging),
	// general weighted fairness (start-time fair queueing) and the
	// multi-timescale token-bucket profile. All three accept per-core
	// Config.Weights; PF also honours Config.PFAvgShift and MTS honours
	// Config.MTSTimescales.
	PolicyPropFair = sim.PolicyPropFair
	PolicyGWF      = sim.PolicyGWF
	PolicyMTS      = sim.PolicyMTS
)

// MaxWeight bounds per-core arbitration weights (Config.Weights and
// Config.LotteryTickets entries).
const MaxWeight = sim.MaxWeight

// Timescale is one token bucket of an MTS bandwidth profile
// (Config.MTSTimescales).
type Timescale = arbiter.Timescale

// DefaultTimescales is the MTS policy's built-in two-timescale profile.
func DefaultTimescales() []Timescale { return arbiter.DefaultTimescales() }

// CBA variants for Config.Credit.Kind.
const (
	// CreditOff disables credit-based arbitration.
	CreditOff = sim.CreditOff
	// CreditCBA is homogeneous CBA (every core refills 1/N per cycle).
	CreditCBA = sim.CreditCBA
	// CreditHCBAWeights is H-CBA via heterogeneous refill weights
	// (§III.A variant 2; the paper's 1/2-vs-1/6 evaluation setting).
	CreditHCBAWeights = sim.CreditHCBAWeights
	// CreditHCBACap is H-CBA via a raised budget cap (§III.A variant 1).
	CreditHCBACap = sim.CreditHCBACap
)

// DefaultConfig returns the paper's platform: a 4-core LEON3-like multicore
// with 4 KiB L1 data caches, 32 KiB L2 partitions, 5/28-cycle transaction
// latencies (MaxL = 56) and random-permutations arbitration.
func DefaultConfig() Config { return sim.DefaultConfig() }

// RunIsolation executes prog alone on the platform (the paper's ISO
// scenario) and returns its execution time and diagnostics.
func RunIsolation(cfg Config, prog Program, seed uint64) (Result, error) {
	return sim.RunIsolation(cfg, prog, seed)
}

// RunMaxContention executes prog against the paper's Table I contention
// injectors (WCET-estimation mode): every other core constantly requests
// maximum-length transactions, gated by the COMP latches when CBA is on.
func RunMaxContention(cfg Config, prog Program, seed uint64) (Result, error) {
	return sim.RunMaxContention(cfg, prog, seed)
}

// RunWorkloads executes one program per core (operation-mode contention)
// and reports the result of the task on cfg.TuA.
func RunWorkloads(cfg Config, programs []Program, seed uint64) (Result, error) {
	return sim.RunWorkloads(cfg, programs, seed)
}

// Loop wraps a program so it restarts forever — for co-runner tasks that
// must generate contention for a whole run.
func Loop(p Program) Program { return sim.NewLooped(p) }

// Workloads lists the bundled benchmark generators (EEMBC-Autobench-like
// kernels plus synthetic stressors).
func Workloads() []string { return workload.Names() }

// WorkloadDescription returns the documentation line of a bundled workload.
func WorkloadDescription(name string) (string, error) {
	s, ok := workload.ByName(name)
	if !ok {
		return "", fmt.Errorf("creditbus: unknown workload %q", name)
	}
	return s.Description, nil
}

// BuildWorkload instantiates a bundled workload. The seed fixes the
// program's own randomness (its "binary"); run-to-run variability comes
// from the run seed passed to the Run functions.
func BuildWorkload(name string, seed uint64) (Program, error) {
	s, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("creditbus: unknown workload %q (have %v)", name, workload.Names())
	}
	return s.Build(seed), nil
}

// PWCET is a fitted MBPTA analysis: Gumbel tail model, i.i.d. diagnostics
// and pWCET quantiles.
type PWCET = mbpta.Analysis

// AnalyzeWCET fits the MBPTA pipeline (block maxima + Gumbel) to a set of
// execution-time measurements. Block 20 is customary for ~1000-run
// campaigns; use Runs/20 for smaller ones.
func AnalyzeWCET(samples []float64, block int) (PWCET, error) {
	return mbpta.Analyze(samples, block)
}

// Campaign tunes multi-run measurement collection. The zero value runs
// with one worker per schedulable CPU and no progress reporting.
type Campaign struct {
	// Workers is the number of simulations in flight; 0 means GOMAXPROCS,
	// 1 forces the serial path. Parallel campaigns produce bit-identical
	// sample vectors to serial ones: every run derives its own seed and
	// builds its own platform, and results are ordered by run index.
	Workers int
	// Progress, when non-nil, is called after each completed run with
	// (done, total), serialised and with done strictly increasing.
	Progress func(done, total int)
}

// CollectMaxContention runs a workload under maximum contention `runs`
// times with derived per-run seeds and returns the execution times in run
// order — the measurement protocol of §III.B, fanned out over c.Workers.
//
// When prog supports cloning (every Program built by this package does),
// each run executes an independent instance and runs proceed in parallel;
// a non-cloneable user Program degrades to the serial Reset-per-run loop,
// which yields the same samples.
func (c Campaign) CollectMaxContention(cfg Config, prog Program, runs int, seed uint64) ([]float64, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("creditbus: runs = %d", runs)
	}
	spec := campaign.Spec{
		Config:   cfg,
		Runs:     runs,
		BaseSeed: seed,
		Workers:  c.Workers,
		Progress: c.Progress,
	}
	if _, ok := cpu.TryClone(prog); ok {
		spec.Build = func(int) Program {
			p, _ := cpu.TryClone(prog)
			return p
		}
	} else {
		// No independent instances available: run serially, rewinding the
		// shared program between runs exactly as the historical loop did.
		spec.Workers = 1
		spec.Build = func(int) Program {
			prog.Reset()
			return prog
		}
	}
	return spec.MaxContention()
}

// CollectMaxContention runs a workload under maximum contention `runs`
// times with derived per-run seeds and returns the execution times — the
// measurement protocol of §III.B. It parallelises across GOMAXPROCS
// workers; use a Campaign to control worker count or observe progress.
func CollectMaxContention(cfg Config, prog Program, runs int, seed uint64) ([]float64, error) {
	return Campaign{}.CollectMaxContention(cfg, prog, runs, seed)
}

// CreditArbiter exposes the raw CBA filter for users embedding it in their
// own interconnect models: budgets, eligibility, analytic share and
// starvation bounds.
type CreditArbiter = core.Arbiter

// CreditConfig configures a raw CreditArbiter.
type CreditConfig = core.Config

// NewCreditArbiter builds a raw CBA filter. HomogeneousCredit,
// core-weighted and cap-raised configurations are available through
// CreditConfig (see the core package documentation mirrored on the type).
func NewCreditArbiter(cfg CreditConfig) (*CreditArbiter, error) { return core.New(cfg) }

// HomogeneousCredit returns the paper's base CBA configuration for n
// masters and a maximum hold time.
func HomogeneousCredit(n int, maxHold int64) CreditConfig { return core.Homogeneous(n, maxHold) }
