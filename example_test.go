package creditbus_test

import (
	"fmt"

	"creditbus"
)

// Example demonstrates the core result of the paper: under credit-based
// arbitration a task's maximum-contention slowdown stays bounded near the
// core count, while every contender's bandwidth is capped at 1/N.
func Example() {
	cfg := creditbus.DefaultConfig()
	cfg.Credit.Kind = creditbus.CreditCBA

	prog, _ := creditbus.BuildWorkload("matrix", 1)
	iso, _ := creditbus.RunIsolation(cfg, prog, 42)

	prog, _ = creditbus.BuildWorkload("matrix", 1)
	con, _ := creditbus.RunMaxContention(cfg, prog, 42)

	slowdown := float64(con.TaskCycles) / float64(iso.TaskCycles)
	fmt.Printf("bounded by core count: %v\n", slowdown < 4)
	// Output:
	// bounded by core count: true
}

// ExampleNewCreditArbiter shows the raw CBA filter: a master that just used
// the bus is ineligible until its budget refills, which is what caps its
// long-run bandwidth share at Weight/Scale.
func ExampleNewCreditArbiter() {
	arb, _ := creditbus.NewCreditArbiter(creditbus.HomogeneousCredit(4, 56))

	fmt.Printf("share per master: %.2f\n", arb.Share(0))
	fmt.Printf("eligible at full budget: %v\n", arb.Eligible(0))

	for c := 0; c < 56; c++ { // master 0 holds the bus for a full request
		arb.Tick(0)
	}
	fmt.Printf("eligible right after: %v\n", arb.Eligible(0))
	fmt.Printf("cycles to refill: %d\n", arb.RefillCycles(0, 56))
	// Output:
	// share per master: 0.25
	// eligible at full budget: true
	// eligible right after: false
	// cycles to refill: 168
}

// ExampleAnalyzeWCET runs the MBPTA pipeline on synthetic measurements.
func ExampleAnalyzeWCET() {
	// Execution times of 200 randomised runs (here: a deterministic ramp
	// folded into a plausible spread for the sake of a stable example).
	samples := make([]float64, 200)
	for i := range samples {
		samples[i] = 100000 + float64((i*7919)%500)
	}
	an, err := creditbus.AnalyzeWCET(samples, 10)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("pWCET(1e-9) above observations: %v\n", an.PWCET(1e-9) > 100500)
	// Output:
	// pWCET(1e-9) above observations: true
}
