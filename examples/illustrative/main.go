// Illustrative example (§II of the paper): a task issuing frequent short
// bus requests (L2 hits) shares the bus with three streaming tasks whose
// requests each hold the bus for 28 cycles. Slot-fair round-robin gives the
// short-request task ~10% of the bandwidth and a ~9x slowdown; CBA caps
// every streamer at 1/N and brings the slowdown back towards the core
// count.
package main

import (
	"fmt"
	"log"

	"creditbus"
)

func main() {
	const seed = 7

	task := func() creditbus.Program {
		p, err := creditbus.BuildWorkload("hitter", 1) // dense 5-cycle L2 hits
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	streamers := func() []creditbus.Program {
		out := make([]creditbus.Program, 3)
		for i := range out {
			s, err := creditbus.BuildWorkload("stream", uint64(i+2))
			if err != nil {
				log.Fatal(err)
			}
			out[i] = creditbus.Loop(s) // co-runners stream for the whole run
		}
		return out
	}

	cfg := creditbus.DefaultConfig()
	cfg.Policy = creditbus.PolicyRoundRobin

	iso, err := creditbus.RunIsolation(cfg, task(), seed)
	if err != nil {
		log.Fatal(err)
	}

	runCon := func(cfg creditbus.Config) creditbus.Result {
		progs := append([]creditbus.Program{task()}, streamers()...)
		res, err := creditbus.RunWorkloads(cfg, progs, seed)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	rr := runCon(cfg)

	cba := cfg
	cba.Credit.Kind = creditbus.CreditCBA
	cbaRes := runCon(cba)

	slow := func(r creditbus.Result) float64 { return float64(r.TaskCycles) / float64(iso.TaskCycles) }
	fmt.Println("§II illustrative scenario: short-request task vs 3 streaming co-runners")
	fmt.Printf("  isolation:            %8d cycles\n", iso.TaskCycles)
	fmt.Printf("  round-robin (slots):  %8d cycles  %.2fx   <- slot fairness, paper's arithmetic: 9.4x\n",
		rr.TaskCycles, slow(rr))
	fmt.Printf("  round-robin + CBA:    %8d cycles  %.2fx   <- cycle fairness (paper fluid limit: 2.8x)\n",
		cbaRes.TaskCycles, slow(cbaRes))
	fmt.Println()
	fmt.Println("With CBA each streamer is capped at 25% of bus cycles; without it the three")
	fmt.Println("streamers hold ~90% of the bus despite receiving the same number of slots.")
}
