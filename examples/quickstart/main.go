// Quickstart: run one benchmark on the paper's 4-core platform in
// isolation and under maximum contention, with and without credit-based
// arbitration, and print the slowdowns — the smallest end-to-end use of the
// library.
package main

import (
	"fmt"
	"log"

	"creditbus"
)

func main() {
	const seed = 42

	baseline := creditbus.DefaultConfig() // random permutations, CBA off

	run := func(cfg creditbus.Config, contention bool) int64 {
		prog, err := creditbus.BuildWorkload("matrix", 1)
		if err != nil {
			log.Fatal(err)
		}
		var res creditbus.Result
		if contention {
			res, err = creditbus.RunMaxContention(cfg, prog, seed)
		} else {
			res, err = creditbus.RunIsolation(cfg, prog, seed)
		}
		if err != nil {
			log.Fatal(err)
		}
		return res.TaskCycles
	}

	iso := run(baseline, false)
	con := run(baseline, true)

	cba := baseline
	cba.Credit.Kind = creditbus.CreditCBA
	isoCBA := run(cba, false)
	conCBA := run(cba, true)

	fmt.Println("matrix on the 4-core LEON3-like platform (random permutations bus):")
	fmt.Printf("  isolation:                 %8d cycles\n", iso)
	fmt.Printf("  max contention:            %8d cycles  (%.2fx)\n", con, float64(con)/float64(iso))
	fmt.Printf("  isolation + CBA:           %8d cycles  (%.2fx)\n", isoCBA, float64(isoCBA)/float64(iso))
	fmt.Printf("  max contention + CBA:      %8d cycles  (%.2fx)\n", conCBA, float64(conCBA)/float64(iso))
	fmt.Println()
	fmt.Println("CBA trades a few percent in isolation for a much tighter contention bound —")
	fmt.Println("bandwidth is shared fairly in cycles, not in request slots (DATE 2017, §III).")
}
