// Heterogeneous bandwidth allocation (§III.A): a mixed-criticality setup
// where the critical control task must receive 50% of the bus bandwidth
// and three best-effort streamers share the rest — the paper's H-CBA
// evaluation setting (the critical core refills 1/2 cycle of budget per
// cycle, the others 1/6 each).
package main

import (
	"fmt"
	"log"

	"creditbus"
)

func main() {
	const seed = 11

	critical := func() creditbus.Program {
		p, err := creditbus.BuildWorkload("canrdr", 1)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	load := func() []creditbus.Program {
		out := make([]creditbus.Program, 3)
		for i := range out {
			s, err := creditbus.BuildWorkload("stream", uint64(i+2))
			if err != nil {
				log.Fatal(err)
			}
			out[i] = creditbus.Loop(s)
		}
		return out
	}

	cfg := creditbus.DefaultConfig()
	iso, err := creditbus.RunIsolation(cfg, critical(), seed)
	if err != nil {
		log.Fatal(err)
	}

	run := func(kind creditbus.CreditSpec) creditbus.Result {
		c := cfg
		c.Credit = kind
		res, err := creditbus.RunWorkloads(c, append([]creditbus.Program{critical()}, load()...), seed)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	none := run(creditbus.CreditSpec{Kind: creditbus.CreditOff})
	cba := run(creditbus.CreditSpec{Kind: creditbus.CreditCBA})
	// H-CBA variant 2: core 0 gets 1/2, each streamer 1/6.
	hcbaW := run(creditbus.CreditSpec{Kind: creditbus.CreditHCBAWeights, Num: 1, Den: 2})
	// H-CBA variant 1: core 0 may bank twice the budget for bursts.
	hcbaC := run(creditbus.CreditSpec{Kind: creditbus.CreditHCBACap, CapFactor: 2})

	slow := func(r creditbus.Result) float64 { return float64(r.TaskCycles) / float64(iso.TaskCycles) }
	fmt.Println("critical canrdr task vs 3 streaming best-effort tasks:")
	fmt.Printf("  isolation:                  %8d cycles\n", iso.TaskCycles)
	fmt.Printf("  no CBA:                     %8d cycles  %.2fx\n", none.TaskCycles, slow(none))
	fmt.Printf("  CBA (1/4 each):             %8d cycles  %.2fx\n", cba.TaskCycles, slow(cba))
	fmt.Printf("  H-CBA weights (1/2 vs 1/6): %8d cycles  %.2fx\n", hcbaW.TaskCycles, slow(hcbaW))
	fmt.Printf("  H-CBA cap (2x budget bank): %8d cycles  %.2fx\n", hcbaC.TaskCycles, slow(hcbaC))
	fmt.Println()
	fmt.Println("The weights variant guarantees the critical task 50% of bus cycles; the cap")
	fmt.Println("variant keeps shares equal but lets the critical task burst back-to-back.")
}
