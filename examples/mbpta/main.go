// MBPTA workflow (§III.B): collect execution times of a task under the
// paper's WCET-estimation mode (maximum contention, zero initial budget,
// randomised caches and arbitration), check the measurements behave i.i.d.,
// fit a Gumbel tail and read off probabilistic WCET bounds.
package main

import (
	"fmt"
	"log"

	"creditbus"
)

func main() {
	const (
		runs  = 200
		block = 10
		seed  = 20170327
	)

	cfg := creditbus.DefaultConfig()
	cfg.Credit.Kind = creditbus.CreditCBA

	prog, err := creditbus.BuildWorkload("canrdr", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collecting %d maximum-contention runs of canrdr (CBA bus)...\n", runs)
	samples, err := creditbus.CollectMaxContention(cfg, prog, runs, seed)
	if err != nil {
		log.Fatal(err)
	}

	an, err := creditbus.AnalyzeWCET(samples, block)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("observed: min=%.0f max=%.0f\n", minOf(samples), maxOf(samples))
	fmt.Printf("i.i.d. diagnostics: lag-1 autocorr %.4f (pass=%v), KS half-split %.4f (pass=%v)\n",
		an.IID.Lag1, an.IID.Lag1Pass, an.IID.KS, an.IID.KSPass)
	fmt.Printf("gumbel tail: mu=%.0f sigma=%.1f\n\n", an.Fit.Mu, an.Fit.Sigma)
	fmt.Println("pWCET curve (probability of exceeding the bound in one run):")
	for _, pt := range an.Curve(10) {
		fmt.Printf("  p = %.0e   WCET <= %.0f cycles\n", pt.Prob, pt.WCET)
	}
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
