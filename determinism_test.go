// Determinism of the parallel campaign engine: every multi-run protocol
// must produce byte-identical output at any worker count, because each run
// derives its own seed, owns its platform and program instance, and results
// are aggregated in run order. Run with -race to also exercise the engine's
// synchronisation.
package creditbus_test

import (
	"math"
	"reflect"
	"testing"

	"creditbus"
	"creditbus/internal/exp"
)

// testWorkload builds a small bus-heavy program through the public API.
func testWorkload(t testing.TB) creditbus.Program {
	t.Helper()
	ops := make([]creditbus.Op, 0, 1200)
	for i := 0; i < 400; i++ {
		ops = append(ops,
			creditbus.Op{Kind: creditbus.OpLoad, Addr: uint64(i*32) % 65536},
			creditbus.Op{Kind: creditbus.OpALU, Cycles: 3},
			creditbus.Op{Kind: creditbus.OpStore, Addr: uint64(i*8+16) % 32768},
		)
	}
	return creditbus.NewTrace(ops)
}

func TestCampaignDeterminismCollectMaxContention(t *testing.T) {
	cfg := creditbus.DefaultConfig()
	cfg.Credit.Kind = creditbus.CreditCBA
	const runs, seed = 24, 20170327

	serial, err := creditbus.Campaign{Workers: 1}.CollectMaxContention(cfg, testWorkload(t), runs, seed)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := creditbus.Campaign{Workers: 4}.CollectMaxContention(cfg, testWorkload(t), runs, seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != runs || len(parallel) != runs {
		t.Fatalf("lengths %d/%d, want %d", len(serial), len(parallel), runs)
	}
	for r := range serial {
		if math.Float64bits(serial[r]) != math.Float64bits(parallel[r]) {
			t.Fatalf("run %d: serial %v != parallel %v", r, serial[r], parallel[r])
		}
	}
	// The default entry point must match both.
	def, err := creditbus.CollectMaxContention(cfg, testWorkload(t), runs, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def, serial) {
		t.Fatal("CollectMaxContention differs from Campaign{Workers:1}")
	}
}

// A Program that hides its concrete type forces the serial Reset-per-run
// fallback; its samples must equal the cloning parallel path's.
type opaqueProgram struct{ inner creditbus.Program }

func (o opaqueProgram) Next() (creditbus.Op, bool) { return o.inner.Next() }
func (o opaqueProgram) Reset()                     { o.inner.Reset() }

func TestCampaignNonCloneableFallbackMatches(t *testing.T) {
	cfg := creditbus.DefaultConfig()
	const runs, seed = 8, 7

	cloneable, err := creditbus.CollectMaxContention(cfg, testWorkload(t), runs, seed)
	if err != nil {
		t.Fatal(err)
	}
	opaque, err := creditbus.CollectMaxContention(cfg, opaqueProgram{inner: testWorkload(t)}, runs, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cloneable, opaque) {
		t.Fatalf("fallback samples differ:\n cloneable %v\n opaque    %v", cloneable, opaque)
	}
}

func TestCampaignProgressReporting(t *testing.T) {
	cfg := creditbus.DefaultConfig()
	var calls []int
	c := creditbus.Campaign{Workers: 3, Progress: func(done, total int) {
		if total != 10 {
			t.Errorf("total = %d, want 10", total)
		}
		calls = append(calls, done)
	}}
	if _, err := c.CollectMaxContention(cfg, testWorkload(t), 10, 1); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 10 {
		t.Fatalf("progress called %d times, want 10", len(calls))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress call %d reported done=%d", i, d)
		}
	}
}

func TestCampaignDeterminismMBPTAExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement campaign")
	}
	opts := exp.Options{Runs: 40, MaxOps: 4000}
	opts.Workers = 1
	serial, err := exp.MBPTAExperiment(opts, "matrix")
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 4
	parallel, err := exp.MBPTAExperiment(opts, "matrix")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("MBPTA results differ between workers=1 and workers=4:\n serial   %+v\n parallel %+v", serial, parallel)
	}
}

func TestCampaignDeterminismFig1AndSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run campaigns")
	}
	serialRows, err := exp.Fig1(exp.Options{Runs: 2, MaxOps: 3000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallelRows, err := exp.Fig1(exp.Options{Runs: 2, MaxOps: 3000, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialRows, parallelRows) {
		t.Fatal("Fig1 rows differ between workers=1 and workers=4")
	}

	if !reflect.DeepEqual(
		exp.Sweep(exp.Options{Workers: 1}),
		exp.Sweep(exp.Options{Workers: 4}),
	) {
		t.Fatal("Sweep points differ between workers=1 and workers=4")
	}
}
