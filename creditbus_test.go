package creditbus_test

import (
	"testing"

	"creditbus"
)

func TestFacadeQuickstart(t *testing.T) {
	cfg := creditbus.DefaultConfig()
	prog, err := creditbus.BuildWorkload("canrdr", 1)
	if err != nil {
		t.Fatal(err)
	}
	iso, err := creditbus.RunIsolation(cfg, prog, 7)
	if err != nil {
		t.Fatal(err)
	}
	if iso.TaskCycles <= 0 {
		t.Fatal("no cycles")
	}

	cfg.Credit.Kind = creditbus.CreditCBA
	prog2, _ := creditbus.BuildWorkload("canrdr", 1)
	con, err := creditbus.RunMaxContention(cfg, prog2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if con.TaskCycles <= iso.TaskCycles {
		t.Fatalf("contention %d not slower than isolation %d", con.TaskCycles, iso.TaskCycles)
	}
}

func TestFacadeWorkloadRegistry(t *testing.T) {
	names := creditbus.Workloads()
	if len(names) < 10 {
		t.Fatalf("only %d workloads", len(names))
	}
	for _, n := range names {
		d, err := creditbus.WorkloadDescription(n)
		if err != nil || d == "" {
			t.Errorf("workload %s: %v %q", n, err, d)
		}
	}
	if _, err := creditbus.BuildWorkload("nope", 1); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := creditbus.WorkloadDescription("nope"); err == nil {
		t.Error("unknown workload description accepted")
	}
}

func TestFacadeCustomTrace(t *testing.T) {
	ops := []creditbus.Op{
		{Kind: creditbus.OpALU, Cycles: 10},
		{Kind: creditbus.OpLoad, Addr: 0x1000},
		{Kind: creditbus.OpStore, Addr: 0x2000},
		{Kind: creditbus.OpAtomic, Addr: 0x3000},
	}
	prog := creditbus.NewTrace(ops)
	res, err := creditbus.RunIsolation(creditbus.DefaultConfig(), prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.CPU.Instructions != 4 {
		t.Fatalf("instructions = %d, want 4", res.CPU.Instructions)
	}
}

func TestFacadeMBPTAPipeline(t *testing.T) {
	cfg := creditbus.DefaultConfig()
	cfg.Credit.Kind = creditbus.CreditCBA
	prog, _ := creditbus.BuildWorkload("rspeed", 1)
	samples, err := creditbus.CollectMaxContention(cfg, prog, 60, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 60 {
		t.Fatalf("samples = %d", len(samples))
	}
	an, err := creditbus.AnalyzeWCET(samples, 3)
	if err != nil {
		t.Fatal(err)
	}
	if an.PWCET(1e-9) <= an.PWCET(1e-3) {
		t.Error("pWCET not monotone in rarity")
	}
	if _, err := creditbus.CollectMaxContention(cfg, prog, 0, 1); err == nil {
		t.Error("zero runs accepted")
	}
}

func TestFacadeCreditArbiter(t *testing.T) {
	arb, err := creditbus.NewCreditArbiter(creditbus.HomogeneousCredit(4, 56))
	if err != nil {
		t.Fatal(err)
	}
	if arb.Share(0) != 0.25 {
		t.Fatalf("share = %v", arb.Share(0))
	}
	if !arb.Eligible(2) {
		t.Fatal("full budget not eligible")
	}
	arb.Tick(2)
	if arb.Eligible(2) {
		t.Fatal("core that used the bus still eligible")
	}
}

func TestFacadeWorkloadsScenario(t *testing.T) {
	cfg := creditbus.DefaultConfig()
	cfg.Credit.Kind = creditbus.CreditCBA
	tua, _ := creditbus.BuildWorkload("rspeed", 1)
	stream, _ := creditbus.BuildWorkload("stream", 2)
	progs := []creditbus.Program{tua, creditbus.Loop(stream), nil, nil}
	res, err := creditbus.RunWorkloads(cfg, progs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.TaskCycles <= 0 {
		t.Fatal("no cycles")
	}
}

func TestFacadeFairnessZoo(t *testing.T) {
	cfg := creditbus.DefaultConfig()
	cfg.Policy = creditbus.PolicyMTS
	cfg.Weights = []int64{2, 1, 1, 2}
	cfg.MTSTimescales = creditbus.DefaultTimescales()
	if len(cfg.MTSTimescales) == 0 {
		t.Fatal("DefaultTimescales is empty")
	}
	for _, ts := range cfg.MTSTimescales {
		if ts.Num < 1 || ts.Den < 1 || ts.Depth < 1 {
			t.Fatalf("default timescale %+v has a field < 1", ts)
		}
		if ts.Den > creditbus.MaxWeight {
			t.Fatalf("default timescale %+v exceeds MaxWeight", ts)
		}
	}
	tua, _ := creditbus.BuildWorkload("rspeed", 1)
	stream, _ := creditbus.BuildWorkload("stream", 2)
	progs := []creditbus.Program{tua, creditbus.Loop(stream), nil, nil}
	res, err := creditbus.RunWorkloads(cfg, progs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.TaskCycles <= 0 {
		t.Fatal("no cycles")
	}
}
