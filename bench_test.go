// Benchmarks regenerating the paper's tables and figures (DESIGN.md §5):
// one testing.B target per artefact, each reporting the headline numbers as
// custom metrics so `go test -bench=. -benchmem` reproduces the paper's
// rows. cmd/experiments prints the full tables; these targets are the
// automated, regression-checkable form.
package creditbus_test

import (
	"runtime"
	"testing"

	"creditbus"
	"creditbus/internal/arbiter"
	"creditbus/internal/bus"
	"creditbus/internal/core"
	"creditbus/internal/exp"
)

// BenchmarkIllustrativeExample regenerates EXP-ILL (§II): the 9.4× vs 2.8×
// arithmetic. Metrics: rr-x and cba-x are the measured slowdowns.
func BenchmarkIllustrativeExample(b *testing.B) {
	var r exp.IllustrativeResult
	for i := 0; i < b.N; i++ {
		r = exp.Illustrative()
	}
	b.ReportMetric(r.RRSlowdown, "rr-x")
	b.ReportMetric(r.CBASlowdown, "cba-x")
	b.ReportMetric(float64(r.IsoCycles), "iso-cycles")
}

// BenchmarkFig1 regenerates EXP-F1 (Figure 1) with a reduced run count per
// iteration. Metrics: the worst RP-CON and CBA-CON slowdowns and the mean
// CBA-ISO overhead (paper: 3.34, 2.34, 1.03).
func BenchmarkFig1(b *testing.B) {
	var s exp.Fig1Summary
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig1(exp.Options{Runs: 3, MaxOps: 20000})
		if err != nil {
			b.Fatal(err)
		}
		s = exp.Summarise(rows)
	}
	b.ReportMetric(s.MaxRPCon, "max-rp-con-x")
	b.ReportMetric(s.MaxCBACon, "max-cba-con-x")
	b.ReportMetric(s.AvgCBAIso, "avg-cba-iso-x")
}

// BenchmarkTableISignals regenerates EXP-T1's dynamic side: the cost of the
// Table I state machine (budget update + COMP latch + eligibility filter)
// per simulated cycle.
func BenchmarkTableISignals(b *testing.B) {
	arb := core.MustNew(core.Config{
		Masters: 4, MaxHold: 56,
		StartEmpty: []bool{true, false, false, false},
	})
	sig := core.NewSignals(arb, core.WCETMode, 0)
	pending := []bool{true, true, true, true}
	eligible := make([]bool, 4)
	for i := 0; i < b.N; i++ {
		sig.Update(i%3 == 0)
		arb.Tick(i%5 - 1) // cycles through idle and each master
		arb.FilterEligible(pending, eligible)
	}
}

// BenchmarkSweepContenderLength regenerates EXP-SWEEP: slot-fair slowdown
// growth vs CBA's flat curve. Metrics: slowdowns at contender hold 56.
func BenchmarkSweepContenderLength(b *testing.B) {
	var pts []exp.SweepPoint
	for i := 0; i < b.N; i++ {
		pts = exp.Sweep(exp.Options{})
	}
	last := pts[len(pts)-1]
	b.ReportMetric(last.Slowdown["RR"], "rr-at-56-x")
	b.ReportMetric(last.Slowdown["RP"], "rp-at-56-x")
	b.ReportMetric(last.Slowdown["CBA+RP"], "cba-rp-at-56-x")
}

// BenchmarkHCBAVariants regenerates EXP-HCBA (§III.A): weights vs cap.
// Metrics: back-to-back grants and burst latency of the cap variant.
func BenchmarkHCBAVariants(b *testing.B) {
	var rs []exp.HCBAResult
	for i := 0; i < b.N; i++ {
		rs = exp.HCBAAblation(exp.Options{})
	}
	for _, r := range rs {
		if r.Variant == "cap" {
			b.ReportMetric(float64(r.TuABackToBack), "cap-back-to-back")
			b.ReportMetric(r.BurstLatency, "cap-burst-cycles")
		} else {
			b.ReportMetric(r.BurstLatency, "weights-burst-cycles")
		}
	}
}

// BenchmarkMBPTAFit regenerates EXP-MBPTA's analysis stage: the Gumbel fit
// over a 1000-sample campaign (the paper's run count).
func BenchmarkMBPTAFit(b *testing.B) {
	cfg := creditbus.DefaultConfig()
	cfg.Credit.Kind = creditbus.CreditCBA
	prog, err := creditbus.BuildWorkload("rspeed", 1)
	if err != nil {
		b.Fatal(err)
	}
	samples, err := creditbus.CollectMaxContention(cfg, prog, 100, 1)
	if err != nil {
		b.Fatal(err)
	}
	// Replicate to the paper's campaign size with small jitter-free reuse:
	// the fit cost is what is being measured.
	big := make([]float64, 0, 1000)
	for len(big) < 1000 {
		big = append(big, samples...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := creditbus.AnalyzeWCET(big[:1000], 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArbiterDecisionRP and ...RPCBA regenerate EXP-OVH: the software
// cost of one bus cycle including arbitration, without and with the CBA
// filter (the substitute for the paper's FPGA synthesis deltas).
func BenchmarkArbiterDecisionRP(b *testing.B)    { benchBusCycle(b, false) }
func BenchmarkArbiterDecisionRPCBA(b *testing.B) { benchBusCycle(b, true) }

func benchBusCycle(b *testing.B, withCBA bool) {
	const masters = 4
	var credit *core.Arbiter
	if withCBA {
		credit = core.MustNew(core.Homogeneous(masters, 56))
	}
	bb := bus.MustNew(bus.Config{
		Masters: masters, MaxHold: 56,
		Policy: arbiter.NewRandomPermutation(masters, 1),
		Credit: credit,
	})
	holds := []int64{5, 28, 56, 28}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for m := 0; m < masters; m++ {
			if bb.CanPost(m) {
				bb.MustPost(m, bus.Request{Hold: holds[m]})
			}
		}
		bb.Tick()
	}
}

// BenchmarkWholePlatformCycle measures the full-platform simulation rate
// (cores + caches + bus + CBA), the number that sets experiment wall-clock
// cost.
func BenchmarkWholePlatformCycle(b *testing.B) {
	cfg := creditbus.DefaultConfig()
	cfg.Credit.Kind = creditbus.CreditCBA
	prog, err := creditbus.BuildWorkload("matrix", 1)
	if err != nil {
		b.Fatal(err)
	}
	res, err := creditbus.RunMaxContention(cfg, prog, 1)
	if err != nil {
		b.Fatal(err)
	}
	cyclesPerRun := res.TaskCycles
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog.Reset()
		if _, err := creditbus.RunMaxContention(cfg, prog, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cyclesPerRun), "sim-cycles/run")
}

// BenchmarkCollectMaxContentionSerial and ...Parallel measure the §III.B
// measurement campaign without and with the worker-pool engine (both on the
// event-horizon stepping engine, the default). ...PerCycle is the same
// serial campaign forced onto the per-cycle reference engine: the
// Serial-vs-PerCycle ratio is the fast path's single-run speedup, tracked
// in BENCH_sim.json (cmd/simbench). All variants produce bit-identical
// sample vectors (TestCampaignDeterminism, TestFastPathCollect...); on a
// multicore host the parallel variant adds near-linear speedup on top,
// which together turn the paper's 1000-run MBPTA campaigns from minutes
// into seconds.
func BenchmarkCollectMaxContentionSerial(b *testing.B) { benchCollect(b, 1, false) }

func BenchmarkCollectMaxContentionPerCycle(b *testing.B) { benchCollect(b, 1, true) }

func BenchmarkCollectMaxContentionParallel(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2 // exercise the pool even on single-CPU hosts
	}
	benchCollect(b, workers, false)
}

func benchCollect(b *testing.B, workers int, perCycle bool) {
	cfg := creditbus.DefaultConfig()
	cfg.Credit.Kind = creditbus.CreditCBA
	cfg.ForcePerCycle = perCycle
	prog, err := creditbus.BuildWorkload("canrdr", 1)
	if err != nil {
		b.Fatal(err)
	}
	const runs = 16
	c := creditbus.Campaign{Workers: workers}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.CollectMaxContention(cfg, prog, runs, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(runs*b.N)/b.Elapsed().Seconds(), "sim-runs/s")
}
