module creditbus

go 1.22
