package creditbus_test

import (
	"testing"

	"creditbus"
	"creditbus/internal/cpu"
	"creditbus/internal/sim"
	"creditbus/internal/workload"
)

// TestFastPathCollectMaxContentionVectors is the public-API half of the
// event-horizon differential proof (the Result-level sweep lives in
// internal/sim): for every policy × CBA variant the §III.B measurement
// campaign must return the exact same sample vector under event-horizon
// stepping as under the per-cycle reference engine — same runs, same derived
// seeds, same execution times, in the same order.
func TestFastPathCollectMaxContentionVectors(t *testing.T) {
	truncated := func(name string, ops int) creditbus.Program {
		s, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("missing workload %s", name)
		}
		tr := s.Build(1)
		if ops > 0 && tr.Len() > ops {
			return cpu.NewTrace(tr.Ops()[:ops])
		}
		return tr
	}

	policies := []sim.PolicyKind{creditbus.PolicyRoundRobin, creditbus.PolicyFIFO,
		creditbus.PolicyTDMA, creditbus.PolicyLottery, creditbus.PolicyRandomPerm,
		creditbus.PolicyPriority, creditbus.PolicyPropFair, creditbus.PolicyGWF,
		creditbus.PolicyMTS}
	credits := []sim.CreditKind{creditbus.CreditOff, creditbus.CreditCBA,
		creditbus.CreditHCBAWeights, creditbus.CreditHCBACap}
	workloads := []struct {
		name string
		ops  int
	}{{"canrdr", 900}, {"matrix", 800}, {"rspeed", 0}}

	for _, policy := range policies {
		for _, credit := range credits {
			for _, wl := range workloads {
				policy, credit, wl := policy, credit, wl
				t.Run(string(policy)+"/"+string(credit)+"/"+wl.name, func(t *testing.T) {
					t.Parallel()
					cfg := creditbus.DefaultConfig()
					cfg.Policy = policy
					cfg.Credit.Kind = credit

					const runs = 5
					fast, err := creditbus.Campaign{Workers: 1}.
						CollectMaxContention(cfg, truncated(wl.name, wl.ops), runs, 7)
					if err != nil {
						t.Fatalf("fast: %v", err)
					}
					cfg.ForcePerCycle = true
					slow, err := creditbus.Campaign{Workers: 1}.
						CollectMaxContention(cfg, truncated(wl.name, wl.ops), runs, 7)
					if err != nil {
						t.Fatalf("per-cycle: %v", err)
					}
					for i := range slow {
						if slow[i] != fast[i] {
							t.Fatalf("sample %d diverged: per-cycle %v, fast %v", i, slow[i], fast[i])
						}
					}
				})
			}
		}
	}
}
